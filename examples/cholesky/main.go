// Cholesky: the paper's Listing 1 written against the Go API.
//
// A self-contained distributed tiled Cholesky factorization built directly
// on the public ttg package — four kernel template tasks (POTRF, TRSM,
// SYRK, GEMM) wired by typed edges, with the TRSM broadcast to four
// terminal sets and 2D block-cyclic task placement. It factors a small SPD
// matrix on 4 virtual ranks and verifies L·Lᵀ = A.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/lapack"
	"repro/internal/tile"
	"repro/ttg"
)

const (
	n  = 128 // matrix order
	nb = 32  // tile size
	nt = n / nb
)

// element defines the synthetic SPD input matrix.
func element(i, j int) float64 {
	if i == j {
		return 4
	}
	d := float64(i - j)
	return 1 / (1 + d*d)
}

func inputTile(bi, bj int) *tile.Tile {
	t := tile.New(nb, nb)
	for r := 0; r < nb; r++ {
		for c := 0; c < nb; c++ {
			t.Set(r, c, element(bi*nb+r, bj*nb+c))
		}
	}
	return t
}

func main() {
	var mu sync.Mutex
	factor := map[ttg.Int2]*tile.Tile{}

	ttg.Run(ttg.Config{Ranks: 4, WorkersPerRank: 2}, func(pc *ttg.Process) {
		g := pc.NewGraph()

		// Edges, as in Listing 1: 1-tuple keys for POTRF, 2-tuple keys
		// for tile coordinates, 3-tuple keys encoding the iteration K.
		initPotrf := ttg.NewEdge[ttg.Int1, *tile.Tile]("init_potrf")
		potrfTrsm := ttg.NewEdge[ttg.Int2, *tile.Tile]("potrf_trsm")
		gemmTrsm := ttg.NewEdge[ttg.Int2, *tile.Tile]("gemm_trsm")
		trsmSyrk := ttg.NewEdge[ttg.Int2, *tile.Tile]("trsm_syrk")
		syrkChain := ttg.NewEdge[ttg.Int2, *tile.Tile]("syrk_chain")
		trsmGemmRow := ttg.NewEdge[ttg.Int3, *tile.Tile]("trsm_gemm_row")
		trsmGemmCol := ttg.NewEdge[ttg.Int3, *tile.Tile]("trsm_gemm_col")
		gemmChain := ttg.NewEdge[ttg.Int3, *tile.Tile]("gemm_chain")
		result := ttg.NewEdge[ttg.Int2, *tile.Tile]("result")

		// Tiles live on a 2×2 process grid.
		owner := func(i, j int) int { return (i%2)*2 + j%2 }

		ttg.MakeTT1(g, "POTRF", ttg.Input(initPotrf),
			ttg.Out(result, potrfTrsm),
			func(x *ttg.Ctx[ttg.Int1], t *tile.Tile) {
				k := x.Key()[0]
				if err := lapack.Potrf(t); err != nil {
					panic(err)
				}
				var trsms []ttg.Int2
				for m := k + 1; m < nt; m++ {
					trsms = append(trsms, ttg.Int2{m, k})
				}
				ttg.BroadcastMulti(x, t, ttg.Borrow,
					ttg.To(result, ttg.Int2{k, k}),
					ttg.To(potrfTrsm, trsms...),
				)
			},
			ttg.Options[ttg.Int1]{Keymap: func(k ttg.Int1) int { return owner(k[0], k[0]) }},
		)

		// TRSM: the Listing 1 task body — one broadcast feeding the
		// result writer, the SYRK, and the GEMMs of row and column M.
		ttg.MakeTT2(g, "TRSM", ttg.Input(potrfTrsm), ttg.Input(gemmTrsm),
			ttg.Out(result, trsmSyrk, trsmGemmRow, trsmGemmCol),
			func(x *ttg.Ctx[ttg.Int2], lkk, amk *tile.Tile) {
				m, k := x.Key()[0], x.Key()[1]
				lapack.Trsm(lkk, amk)
				var rowIDs, colIDs []ttg.Int3
				for j := k + 1; j < m; j++ {
					rowIDs = append(rowIDs, ttg.Int3{m, j, k})
				}
				for i := m + 1; i < nt; i++ {
					colIDs = append(colIDs, ttg.Int3{i, m, k})
				}
				ttg.BroadcastMulti(x, amk, ttg.Borrow,
					ttg.To(result, ttg.Int2{m, k}),
					ttg.To(trsmSyrk, ttg.Int2{m, k}),
					ttg.To(trsmGemmRow, rowIDs...),
					ttg.To(trsmGemmCol, colIDs...),
				)
			},
			ttg.Options[ttg.Int2]{Keymap: func(k ttg.Int2) int { return owner(k[0], k[1]) }},
		)

		ttg.MakeTT2(g, "SYRK", ttg.Input(trsmSyrk), ttg.Input(syrkChain),
			ttg.Out(initPotrf, syrkChain),
			func(x *ttg.Ctx[ttg.Int2], lmk, c *tile.Tile) {
				m, k := x.Key()[0], x.Key()[1]
				lapack.Syrk(c, lmk)
				if k == m-1 {
					ttg.SendM(x, initPotrf, ttg.Int1{m}, c, ttg.Move)
				} else {
					ttg.SendM(x, syrkChain, ttg.Int2{m, k + 1}, c, ttg.Move)
				}
			},
			ttg.Options[ttg.Int2]{Keymap: func(k ttg.Int2) int { return owner(k[0], k[0]) }},
		)

		ttg.MakeTT3(g, "GEMM",
			ttg.Input(trsmGemmRow), ttg.Input(trsmGemmCol), ttg.Input(gemmChain),
			ttg.Out(gemmTrsm, gemmChain),
			func(x *ttg.Ctx[ttg.Int3], lik, ljk, c *tile.Tile) {
				i, j, k := x.Key()[0], x.Key()[1], x.Key()[2]
				lapack.GemmNT(c, lik, ljk)
				if k == j-1 {
					ttg.SendM(x, gemmTrsm, ttg.Int2{i, j}, c, ttg.Move)
				} else {
					ttg.SendM(x, gemmChain, ttg.Int3{i, j, k + 1}, c, ttg.Move)
				}
			},
			ttg.Options[ttg.Int3]{Keymap: func(k ttg.Int3) int { return owner(k[0], k[1]) }},
		)

		ttg.MakeTT1(g, "RESULT", ttg.Input(result), nil,
			func(x *ttg.Ctx[ttg.Int2], t *tile.Tile) {
				mu.Lock()
				factor[x.Key()] = t
				mu.Unlock()
			},
			ttg.Options[ttg.Int2]{Keymap: func(k ttg.Int2) int { return owner(k[0], k[1]) }},
		)

		g.MakeExecutable()
		// The INITIATOR of Fig. 1: each rank seeds the tiles it owns.
		for i := 0; i < nt; i++ {
			for j := 0; j <= i; j++ {
				if owner(i, j) != pc.Rank() {
					continue
				}
				t := inputTile(i, j)
				switch {
				case i == 0 && j == 0:
					ttg.Seed(g, initPotrf, ttg.Int1{0}, t)
				case i == j:
					ttg.Seed(g, syrkChain, ttg.Int2{i, 0}, t)
				case j == 0:
					ttg.Seed(g, gemmTrsm, ttg.Int2{i, 0}, t)
				default:
					ttg.Seed(g, gemmChain, ttg.Int3{i, j, 0}, t)
				}
			}
		}
		g.Fence()
	})

	// Verify L·Lᵀ = A over the lower triangle.
	l := func(i, j int) float64 {
		if j > i {
			return 0
		}
		return factor[ttg.Int2{i / nb, j / nb}].At(i%nb, j%nb)
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += l(i, k) * l(j, k)
			}
			if e := math.Abs(s - element(i, j)); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("factored %dx%d in %d tiles; max |L·Lᵀ − A| = %.3g\n", n, n, nt*nt, maxErr)
	if maxErr > 1e-10 {
		panic("verification failed")
	}
}
