// Quickstart: the smallest complete TTG program.
//
// It builds a three-node template task graph — generate → scale → reduce —
// runs it on a 4-rank virtual cluster with the PaRSEC-model backend, and
// prints the reduction. Messages carry (task ID, value) pairs; the reduce
// node uses a streaming terminal, folding an entire stream of inputs into
// one task (the paper's §II-B feature).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/ttg"
)

func main() {
	const n = 16
	var result float64

	ttg.Run(ttg.Config{Ranks: 4, WorkersPerRank: 2, Backend: ttg.PaRSEC}, func(pc *ttg.Process) {
		g := pc.NewGraph()

		// Typed edges: task IDs are Int1, payloads float64.
		gen := ttg.NewEdge[ttg.Int1, float64]("generate")
		scaled := ttg.NewEdge[ttg.Int1, float64]("scaled")
		reduced := ttg.NewEdge[ttg.Int1, float64]("reduced")

		// Each "scale" task doubles its input and forwards it to the
		// reducer. The keymap spreads task IDs across ranks.
		ttg.MakeTT1(g, "scale",
			ttg.Input(gen), ttg.Out(scaled),
			func(x *ttg.Ctx[ttg.Int1], v float64) {
				ttg.Send(x, scaled, ttg.Int1{0}, 2*v)
			},
			ttg.Options[ttg.Int1]{Keymap: func(k ttg.Int1) int { return k[0] % pc.Size() }},
		)

		// The reducer's streaming terminal folds n messages into one task.
		ttg.MakeTT1(g, "reduce",
			ttg.ReduceInput(scaled,
				func(acc, v float64) float64 { return acc + v },
				func(ttg.Int1) int { return n },
			),
			ttg.Out(reduced),
			func(x *ttg.Ctx[ttg.Int1], sum float64) {
				ttg.Send(x, reduced, x.Key(), sum)
			},
			ttg.Options[ttg.Int1]{Keymap: func(ttg.Int1) int { return 0 }},
		)

		ttg.MakeTT1(g, "print",
			ttg.Input(reduced), nil,
			func(x *ttg.Ctx[ttg.Int1], sum float64) { result = sum },
			ttg.Options[ttg.Int1]{Keymap: func(ttg.Int1) int { return 0 }},
		)

		g.MakeExecutable()
		if pc.Rank() == 0 {
			for k := 0; k < n; k++ {
				ttg.Seed(g, gen, ttg.Int1{k}, float64(k))
			}
		}
		g.Fence()
	})

	// Σ 2k for k in [0,16) = 240.
	fmt.Printf("sum of doubled 0..%d = %v\n", n-1, result)
	if result != 240 {
		panic("unexpected result")
	}
}
