// Wavefront: data-dependent dynamic programming over a 2-D grid.
//
// A classic sequence-alignment-style recurrence — cell (i,j) depends on
// its north, west, and northwest neighbors — expressed as a single
// template task with three input terminals. The DAG unfolds dynamically as
// the wavefront sweeps the grid; no global structure is ever materialized.
// Border cells are fed by seeds; every interior cell is produced by its
// neighbors. This is the "control flow = data flow" style the paper's
// §II advocates for irregular applications.
//
//	go run ./examples/wavefront
package main

import (
	"fmt"

	"repro/ttg"
)

const (
	rows = 64
	cols = 64
)

// score is an arbitrary deterministic local cost.
func score(i, j int) float64 {
	h := uint64(i)*0x9E3779B97F4A7C15 ^ uint64(j)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	return float64(h%7) - 3
}

func main() {
	var corner float64

	ttg.Run(ttg.Config{Ranks: 4, WorkersPerRank: 2}, func(pc *ttg.Process) {
		g := pc.NewGraph()

		north := ttg.NewEdge[ttg.Int2, float64]("north")
		west := ttg.NewEdge[ttg.Int2, float64]("west")
		diag := ttg.NewEdge[ttg.Int2, float64]("diag")
		done := ttg.NewEdge[ttg.Void, float64]("done")

		// Anti-diagonal bands map to ranks so each wavefront spreads.
		keymap := func(k ttg.Int2) int { return (k[0] + k[1]) % pc.Size() }

		ttg.MakeTT3(g, "cell",
			ttg.Input(north), ttg.Input(west), ttg.Input(diag),
			ttg.Out(north, west, diag, done),
			func(x *ttg.Ctx[ttg.Int2], n, w, d float64) {
				i, j := x.Key()[0], x.Key()[1]
				v := max3(n, w, d) + score(i, j)
				if i+1 < rows {
					ttg.Send(x, north, ttg.Int2{i + 1, j}, v)
				}
				if j+1 < cols {
					ttg.Send(x, west, ttg.Int2{i, j + 1}, v)
				}
				if i+1 < rows && j+1 < cols {
					ttg.Send(x, diag, ttg.Int2{i + 1, j + 1}, v)
				}
				if i == rows-1 && j == cols-1 {
					ttg.Send(x, done, ttg.Void{}, v)
				}
			},
			ttg.Options[ttg.Int2]{
				Keymap: keymap,
				// Cells nearer the start have higher priority: the
				// wavefront's leading edge is the critical path.
				Priomap: func(k ttg.Int2) int64 { return int64(-(k[0] + k[1])) },
			},
		)

		ttg.MakeTT1(g, "corner", ttg.Input(done), nil,
			func(x *ttg.Ctx[ttg.Void], v float64) { corner = v },
			ttg.Options[ttg.Void]{Keymap: func(ttg.Void) int { return 0 }},
		)

		g.MakeExecutable()
		if pc.Rank() == 0 {
			// Seed the borders: cell (0,0) gets all three inputs; the top
			// row lacks north/diag, the left column lacks west/diag.
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					if i == 0 {
						ttg.Seed(g, north, ttg.Int2{i, j}, 0)
					}
					if j == 0 {
						ttg.Seed(g, west, ttg.Int2{i, j}, 0)
					}
					if i == 0 || j == 0 {
						ttg.Seed(g, diag, ttg.Int2{i, j}, 0)
					}
				}
			}
		}
		g.Fence()
	})

	// Sequential reference.
	ref := make([][]float64, rows)
	for i := range ref {
		ref[i] = make([]float64, cols)
		for j := range ref[i] {
			var n, w, d float64
			if i > 0 {
				n = ref[i-1][j]
			}
			if j > 0 {
				w = ref[i][j-1]
			}
			if i > 0 && j > 0 {
				d = ref[i-1][j-1]
			}
			ref[i][j] = max3(n, w, d) + score(i, j)
		}
	}

	fmt.Printf("wavefront %dx%d: corner score %v (reference %v)\n", rows, cols, corner, ref[rows-1][cols-1])
	if corner != ref[rows-1][cols-1] {
		panic("mismatch with sequential reference")
	}
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
