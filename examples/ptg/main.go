// PTG: the same runtime under a different DSL.
//
// The paper motivates PaRSEC as a runtime "designed to support many DSLs
// or APIs"; TTG is one such frontend and DPLASMA's Parameterized Task
// Graph is another. This example writes a blocked prefix-sum as a PTG —
// task classes over integer parameter spaces with algebraic successor
// rules — and runs it on the same virtual cluster and backends as every
// TTG program in this repository.
//
//	go run ./examples/ptg
package main

import (
	"fmt"
	"sync"

	"repro/internal/ptg"
	"repro/ttg"
)

const blocks = 12

func main() {
	var mu sync.Mutex
	prefix := map[int]float64{}

	ttg.Run(ttg.Config{Ranks: 3, WorkersPerRank: 2}, func(pc *ttg.Process) {
		g := pc.NewGraph()
		pg := ptg.New(g)

		// SCAN(b): receives the running sum S from block b-1, adds its own
		// block total, emits the prefix and forwards S to block b+1.
		var scan *ptg.Class
		scan = pg.Class("SCAN", 1,
			func(t *ptg.Task) {
				b := t.Param(0)
				t.SetData("S", t.Data("S").(float64)+blockTotal(b))
			},
			func(p []int) int { return p[0] % pc.Size() },
		)
		scan.Flow("S", func(p []int) []ptg.Dep {
			if b := p[0]; b+1 < blocks {
				return []ptg.Dep{ptg.Out(), ptg.To(scan, "S", b+1)}
			}
			return []ptg.Dep{ptg.Out()}
		})
		scan.OnOutput(func(params []int, _ string, v any) {
			mu.Lock()
			prefix[params[0]] = v.(float64)
			mu.Unlock()
		})

		pg.Compile()
		g.MakeExecutable()
		if pc.Rank() == pg.Owner(scan, []int{0}) {
			pg.Seed(scan, "S", []int{0}, 0.0)
		}
		g.Fence()
	})

	running := 0.0
	for b := 0; b < blocks; b++ {
		running += blockTotal(b)
		fmt.Printf("prefix[%2d] = %6.1f\n", b, prefix[b])
		if prefix[b] != running {
			panic("prefix sum mismatch")
		}
	}
}

// blockTotal is the synthetic per-block partial sum.
func blockTotal(b int) float64 { return float64((b + 1) * (b + 3) % 17) }
