// Zero-copy wire path benches and the regression guard over
// BENCH_wire.json: gather/scatter sends vs copy-encode across payload
// sizes on the MADNESS-model backend (no splitmd, so the wire path owns
// every payload), the recv-view decode microbenchmark, and the
// TTG_BENCH_GUARD tripwire on the 256 KiB throughput ratio.
package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/madness"
	"repro/internal/core"
	"repro/internal/serde"
	"repro/internal/tile"
	"repro/internal/trace"
)

// runWireStream ships nTiles rows x cols pooled tiles from rank 0 to rank
// 1 with SendMove on a 2-rank MADNESS-model runtime and returns the
// cluster-summed trace. The receiver releases each tile, so pooled payload
// buffers recycle across the stream exactly as they would mid-application.
func runWireStream(tb testing.TB, nTiles, rows, cols int, gather bool) trace.Snapshot {
	tb.Helper()
	serde.SetGatherSends(gather)
	defer serde.SetGatherSends(true)
	var snap trace.Snapshot
	var mu sync.Mutex
	var landed atomic.Int64
	rt := madness.New(2, madness.Config{WorkersPerRank: 2})
	rt.Run(func(p *backend.Proc) {
		g := p.NewGraph()
		in := core.NewEdge("in")
		out := core.NewEdge("out")
		g.AddTT(core.TTSpec{
			Name:    "src",
			Inputs:  []core.InputSpec{{Edge: in}},
			Outputs: []core.OutputSpec{{Edge: out}},
			Keymap:  func(any) int { return 0 },
			Body: func(ctx *core.TaskContext) {
				for k := 0; k < nTiles; k++ {
					tl := tile.NewPooled(rows, cols)
					tl.Data[0] = float64(k)
					ctx.SendMode(0, serde.Int1{k}, tl, core.SendMove)
				}
			},
		})
		g.AddTT(core.TTSpec{
			Name:   "sink",
			Inputs: []core.InputSpec{{Edge: out}},
			Keymap: func(any) int { return 1 },
			Body: func(ctx *core.TaskContext) {
				tl := ctx.Input(0).(*tile.Tile)
				if tl.Data[0] != float64(ctx.Key().(serde.Int1)[0]) {
					panic("wire stream corrupted a tile")
				}
				landed.Add(1)
				tl.Release()
			},
		})
		g.Seal()
		p.Bind(g)
		if p.Rank() == 0 {
			g.Seed(in, serde.Int1{0}, 0.0)
		}
		g.Fence()
		mu.Lock()
		snap = snap.Add(p.Tracer().Snapshot())
		mu.Unlock()
	})
	if got := landed.Load(); got != int64(nTiles) {
		tb.Fatalf("%d tiles landed, want %d", got, nTiles)
	}
	return snap
}

// wireCases spans the 1 KiB gather floor up to 4 MiB payloads; the tile
// count per run shrinks as payloads grow so each measurement moves enough
// bytes to dominate runtime startup without taking seconds per op.
var wireCases = []struct {
	name       string
	rows, cols int
	tiles      int
}{
	{"1KB", 16, 8, 256},
	{"16KB", 32, 64, 128},
	{"256KB", 128, 256, 32},
	{"4MB", 512, 1024, 8},
}

func benchWire(b *testing.B, rows, cols, tiles int, gather bool) {
	b.SetBytes(int64(8 * rows * cols * tiles))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap := runWireStream(b, tiles, rows, cols, gather)
		if gather && snap.GatherSends != int64(tiles) {
			b.Fatalf("GatherSends = %d, want %d", snap.GatherSends, tiles)
		}
		if !gather && snap.GatherSends != 0 {
			b.Fatalf("gather off: GatherSends = %d", snap.GatherSends)
		}
	}
}

// BenchmarkWireGather measures the zero-copy wire path: header-only
// encode, payload segments by reference (a move of a pooled tile ships
// with no copy at all), view decode on the receiver.
func BenchmarkWireGather(b *testing.B) {
	for _, c := range wireCases {
		b.Run(c.name, func(b *testing.B) { benchWire(b, c.rows, c.cols, c.tiles, true) })
	}
}

// BenchmarkWireCopy is the ablation baseline: the same stream through the
// archive path — per-element encode on send, per-element decode into a
// fresh pooled tile on receive.
func BenchmarkWireCopy(b *testing.B) {
	for _, c := range wireCases {
		b.Run(c.name, func(b *testing.B) { benchWire(b, c.rows, c.cols, c.tiles, false) })
	}
}

// BenchmarkRecvViewDecode isolates the receive half at the codec layer: a
// view decode (Scatter aliases the landed segment) against the archive
// decode (copy every element out of the wire buffer).
func BenchmarkRecvViewDecode(b *testing.B) {
	const rows, cols = 256, 256 // 512 KiB payload
	src := tile.New(rows, cols)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	gat, ok := serde.GathererFor(src)
	if !ok {
		b.Fatal("tile codec lost its gather extension")
	}
	hdr := serde.NewBuffer(32)
	segs, ok := gat.Segments(hdr, src)
	if !ok {
		b.Fatal("tile codec declined a real payload")
	}
	payload := int64(serde.SegmentBytes(segs))

	b.Run("view", func(b *testing.B) {
		b.SetBytes(payload)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := gat.Scatter(serde.FromBytes(hdr.Bytes()), segs).(*tile.Tile)
			// Retire the ledger entry only: the view aliases src.Data, which
			// must not be recycled into the tile pool.
			v.EndViewLease()
		}
	})

	eb := serde.NewBuffer(32 + 8*rows*cols)
	serde.EncodeAny(eb, src)
	raw := eb.Bytes()
	b.Run("copy", func(b *testing.B) {
		b.SetBytes(payload)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := serde.DecodeAny(serde.FromBytes(raw)).(*tile.Tile)
			v.Release()
		}
	})
}

// wireThroughputRatio measures gather vs copy wall-clock on the 256 KiB
// stream (the acceptance point) and returns the best-of-reps speedup.
func wireThroughputRatio(tb testing.TB, reps int) float64 {
	const rows, cols, tiles = 128, 256, 32
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		runWireStream(tb, tiles, rows, cols, true)
		gather := time.Since(t0)
		t0 = time.Now()
		runWireStream(tb, tiles, rows, cols, false)
		cp := time.Since(t0)
		if r := cp.Seconds() / gather.Seconds(); r > best {
			best = r
		}
	}
	return best
}

// TestWireBenchGuard is the CI guard over the committed wire baseline:
// with TTG_BENCH_GUARD=1 it re-measures the 256 KiB gather-vs-copy
// throughput ratio and fails when it falls below 2x (the acceptance floor)
// or regresses >35% against BENCH_wire.json. Timing-based ratios wobble
// more than structural counts, hence the wider band and best-of-5.
func TestWireBenchGuard(t *testing.T) {
	if os.Getenv("TTG_BENCH_GUARD") != "1" {
		t.Skip("set TTG_BENCH_GUARD=1 to run the wire bench guard")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("bench guard needs >= 2 CPUs: contended ratios are meaningless on a single-core runner")
	}
	raw, err := os.ReadFile("BENCH_wire.json")
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var baseline struct {
		Summary struct {
			Ratio256K float64 `json:"gather_vs_copy_256k_ratio"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse BENCH_wire.json: %v", err)
	}
	base := baseline.Summary.Ratio256K
	if base < 2 {
		t.Fatalf("BENCH_wire.json gather_vs_copy_256k_ratio = %v, want >= 2", base)
	}
	best := wireThroughputRatio(t, 5)
	if best < 2 {
		t.Fatalf("gather-vs-copy 256KiB speedup below the 2x acceptance floor: %.2fx", best)
	}
	if best < base*0.65 {
		t.Fatalf("wire speedup regressed: measured %.2fx, committed baseline %.2fx (>35%% regression)",
			best, base)
	}
	t.Logf("gather-vs-copy 256KiB speedup: %.2fx (baseline %.2fx)", best, base)
}
