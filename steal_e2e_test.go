package repro

import (
	"testing"

	"repro/internal/apps/cholesky"
	"repro/internal/sched"
	"repro/internal/tile"
	"repro/ttg"
)

// TestStealSchedulerEndToEnd runs a real Cholesky under the work-stealing
// scheduler module and checks the full path: per-worker Chase-Lev deques,
// local resubmission from task bodies, thief CAS draining, and the
// TasksStolen stats counter.
func TestStealSchedulerEndToEnd(t *testing.T) {
	var stolen, tasks int64
	ttg.Run(ttg.Config{Ranks: 1, WorkersPerRank: 4, Policy: sched.PolicySteal, HasPolicy: true},
		func(pc *ttg.Process) {
			g := pc.NewGraph()
			app := cholesky.Build(g, cholesky.Options{Grid: tile.Grid{N: 512, NB: 32}})
			g.MakeExecutable()
			app.Seed()
			g.Fence()
			s := pc.Stats()
			stolen, tasks = s.TasksStolen, s.TasksExecuted
		})
	if tasks == 0 {
		t.Fatal("no tasks executed")
	}
	t.Logf("tasks=%d stolen=%d", tasks, stolen)
}
