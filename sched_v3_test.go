// Scheduler v3 benches and invariants: the contended fan-out ablation
// (PolicyPriority heap vs PolicySteal vs PolicyStealPrio banded deques),
// the priority-inversion window, the run-next inlining ablation, and the
// regression guards over BENCH_sched.json. These are the scheduling-layer
// counterparts of the comm benches behind BENCH_comm.json.
package repro

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apps/cholesky"
	"repro/internal/backend/sim"
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/tile"
	"repro/ttg"
)

// benchSchedFanout is the contended fan-out workload: every op seeds one
// root that unfolds into a 4-ary tree of depth 3 (85 tasks) through
// SubmitLocalBatch while 8 workers chew concurrently, so submissions,
// pops, and wakeups all contend. Priorities vary by depth, so the
// priority-aware policies do real banding/heap work rather than degenerate
// single-bucket traffic.
func benchSchedFanout(b *testing.B, pol sched.Policy, inline bool) {
	const (
		workers = 8
		fan     = 4
		depth   = 3
		tasks   = 1 + fan + fan*fan + fan*fan*fan // 85
	)
	var wg sync.WaitGroup
	var p *sched.Pool
	body := func(w int, it sched.Item) {
		d := it.Value.(int)
		if d > 0 {
			batch := make([]sched.Item, fan)
			for i := range batch {
				batch[i] = sched.Item{Priority: int64((d-1)*20 + i), Value: d - 1}
			}
			wg.Add(fan)
			p.SubmitLocalBatch(w, batch)
		}
		wg.Done()
	}
	p = sched.NewPool(workers, pol, body)
	if !inline {
		p.DisableRunNext()
	}
	p.Start()
	defer p.Stop()
	roots := make([]sched.Item, b.N)
	for i := range roots {
		roots[i] = sched.Item{Priority: depth * 20, Value: depth}
	}
	wg.Add(b.N)
	b.ResetTimer()
	p.SubmitBatch(roots)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(tasks, "tasks/op")
}

// BenchmarkSchedFanoutContended pits the three priority-capable dispatch
// structures against each other on the contended fan-out: the exact-order
// shared heap, priority-blind stealing, and banded priority stealing.
func BenchmarkSchedFanoutContended(b *testing.B) {
	b.Run("priority", func(b *testing.B) { benchSchedFanout(b, sched.PolicyPriority, true) })
	b.Run("steal", func(b *testing.B) { benchSchedFanout(b, sched.PolicySteal, true) })
	b.Run("stealprio", func(b *testing.B) { benchSchedFanout(b, sched.PolicyStealPrio, true) })
}

// benchSchedInversion loads a stopped pool with a bulk of low-priority
// items and then a few high-priority stragglers (submitted last, the
// adversarial order for FIFO-shaped queues), starts the workers, and
// measures where in the completion sequence the high-priority items land.
// hipri_window is the mean completion index of high-priority items as a
// fraction of the total: an exact-order heap pins it near 0, a
// priority-blind queue pushes it toward 1.
func benchSchedInversion(b *testing.B, pol sched.Policy) {
	const (
		workers = 4
		bulk    = 4096
		hi      = 64
	)
	var windowSum float64
	for i := 0; i < b.N; i++ {
		var seq, hiIdxSum atomic.Int64
		var wg sync.WaitGroup
		p := sched.NewPool(workers, pol, func(w int, it sched.Item) {
			idx := seq.Add(1)
			if it.Priority > 1 {
				hiIdxSum.Add(idx)
			}
			wg.Done()
		})
		wg.Add(bulk + hi)
		batch := make([]sched.Item, bulk)
		for j := range batch {
			batch[j] = sched.Item{Priority: 1, Value: j}
		}
		p.SubmitBatch(batch)
		stragglers := make([]sched.Item, hi)
		for j := range stragglers {
			stragglers[j] = sched.Item{Priority: 1000, Value: j}
		}
		p.SubmitBatch(stragglers)
		p.Start()
		wg.Wait()
		p.Stop()
		mean := float64(hiIdxSum.Load()) / hi
		windowSum += mean / (bulk + hi)
	}
	b.ReportMetric(windowSum/float64(b.N), "hipri_window")
}

// BenchmarkSchedPriorityInversion measures priority adherence under load
// for the exact heap, the banded stealer, and the priority-blind stealer.
func BenchmarkSchedPriorityInversion(b *testing.B) {
	b.Run("priority", func(b *testing.B) { benchSchedInversion(b, sched.PolicyPriority) })
	b.Run("stealprio", func(b *testing.B) { benchSchedInversion(b, sched.PolicyStealPrio) })
	b.Run("steal", func(b *testing.B) { benchSchedInversion(b, sched.PolicySteal) })
}

// benchSchedChain runs dependency chains through SubmitLocal — the shape
// successor inlining exists for. One op is one task; 16 chains run
// concurrently on 8 workers so the no-inline variant pays real queue and
// wakeup traffic.
func benchSchedChain(b *testing.B, inline bool) {
	const (
		workers = 8
		chains  = 16
	)
	length := b.N/chains + 1
	var wg sync.WaitGroup
	var p *sched.Pool
	body := func(w int, it sched.Item) {
		v := it.Value.(int)
		if v > 0 {
			wg.Add(1)
			p.SubmitLocal(w, sched.Item{Priority: int64(v % 50), Value: v - 1})
		}
		wg.Done()
	}
	p = sched.NewPool(workers, sched.PolicyStealPrio, body)
	if !inline {
		p.DisableRunNext()
	}
	p.Start()
	defer p.Stop()
	roots := make([]sched.Item, chains)
	for i := range roots {
		roots[i] = sched.Item{Priority: int64(i), Value: length}
	}
	wg.Add(chains)
	b.ResetTimer()
	p.SubmitBatch(roots)
	wg.Wait()
	b.StopTimer()
	st := p.Stats()
	total := float64(chains * (length + 1))
	b.ReportMetric(float64(st.InlineRuns)/total, "inlined_frac")
}

// BenchmarkSchedInline is the run-next ablation: identical chain workload
// with the slot on vs off.
func BenchmarkSchedInline(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchSchedChain(b, true) })
	b.Run("off", func(b *testing.B) { benchSchedChain(b, false) })
}

// TestAblationPriorityInvariant is the asserted extension of
// BenchmarkAblationPriority: at a rank/worker count where workers are
// contended (8 ranks x 16 workers, 64x64 tiles), Cholesky's critical-path
// priority map must measurably shorten the simulated makespan vs
// priorities-off. Virtual time is deterministic, so the floor is a real
// regression tripwire for both the priority map and the scheduler's
// priority handling, not a flaky timing test. (Observed speedup ~1.066;
// asserted floor leaves headroom for cost-model tweaks.)
func TestAblationPriorityInvariant(t *testing.T) {
	grid := tile.Grid{N: 16384, NB: 256}
	machine := cluster.Hawk()
	run := func(prio bool) float64 {
		rt := sim.New(sim.Config{Ranks: 8, WorkersPerRank: 16, Machine: machine,
			Flavor: cluster.ParsecFlavor(), Cost: cholesky.CostModel(grid, machine)})
		rt.Run(func(p *sim.Proc) {
			g := ttg.NewGraphOn(p)
			app := cholesky.Build(g, cholesky.Options{Grid: grid, Phantom: true, Priorities: prio})
			g.MakeExecutable()
			app.Seed()
			g.Fence()
		})
		return rt.Now()
	}
	on, off := run(true), run(false)
	speedup := off / on
	if speedup < 1.02 {
		t.Fatalf("priority map no longer shortens the critical path: makespan on=%.4fs off=%.4fs (speedup %.4f, want >= 1.02)",
			on, off, speedup)
	}
	t.Logf("priority-map speedup at 8x16 workers: %.4f (on=%.4fs off=%.4fs)", speedup, on, off)
}

// TestSchedBenchGuard is the benchstat-style CI guard over the committed
// scheduling baseline: with TTG_BENCH_GUARD=1 it re-runs the contended
// fan-out for PolicyPriority and PolicyStealPrio and fails if the
// stealprio-vs-priority speedup regressed more than 10% below the ratio
// recorded in BENCH_sched.json. Comparing the ratio (not absolute ns/op)
// keeps the guard meaningful across machines of different speeds.
func TestSchedBenchGuard(t *testing.T) {
	if os.Getenv("TTG_BENCH_GUARD") != "1" {
		t.Skip("set TTG_BENCH_GUARD=1 to run the scheduling bench guard")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("bench guard needs >= 2 CPUs: contended ratios are meaningless on a single-core runner")
	}
	raw, err := os.ReadFile("BENCH_sched.json")
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var baseline struct {
		Summary struct {
			ContendedFanoutSpeedup float64 `json:"contended_fanout_speedup"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse BENCH_sched.json: %v", err)
	}
	base := baseline.Summary.ContendedFanoutSpeedup
	if base <= 1 {
		t.Fatalf("BENCH_sched.json contended_fanout_speedup = %v, want > 1", base)
	}
	best := func(pol sched.Policy) float64 {
		ns := math.Inf(1)
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchSchedFanout(b, pol, true) })
			if v := float64(r.T.Nanoseconds()) / float64(r.N); v < ns {
				ns = v
			}
		}
		return ns
	}
	prioNs := best(sched.PolicyPriority)
	stealPrioNs := best(sched.PolicyStealPrio)
	ratio := prioNs / stealPrioNs
	if ratio < base*0.9 {
		t.Fatalf("contended fan-out regressed: stealprio/priority speedup %.2f, committed baseline %.2f (>10%% regression)",
			ratio, base)
	}
	t.Logf("contended fan-out: priority %.0f ns/op, stealprio %.0f ns/op, speedup %.2f (baseline %.2f)",
		prioNs, stealPrioNs, ratio, base)
}
