// Hierarchical-reduction end-to-end tests and benches: the randomized
// tree-vs-sequential equivalence property, the owner in-degree bound, the
// unflushed-partial doctor diagnosis, the FinalizeStream misuse panic, the
// pre-reduction match-table ablation, and the regression guard over
// BENCH_reduce.json. These are the reduction-layer counterparts of the
// scheduling benches behind BENCH_sched.json.
package repro

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/backend/sim"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs/live"
	"repro/internal/serde"
	"repro/internal/trace"
	"repro/ttg"
)

func reduceSimMachine() cluster.Machine {
	return cluster.Machine{
		Name: "ideal", Workers: 2,
		KernelRate: 1e9, SmallOpRate: 1e9,
		Latency: 1e-6, Bandwidth: 10e9, CopyBandwidth: 10e9,
	}
}

// contribution is one pre-planned stream message: value val for key,
// emitted from rank src.
type contribution struct {
	key int
	src int
	val float64
}

// runTreeReduction runs nKeys commutative sum streams over the planned
// contributions on a P-rank sim and returns the per-key results plus the
// aggregate trace counters. Keys are owned round-robin shifted by 1 so
// owners differ from the natural seeding ranks.
func runTreeReduction(t *testing.T, ranks int, nKeys int, counts []int, plan []contribution, preReduce bool) (map[int]float64, trace.Snapshot) {
	t.Helper()
	rt := sim.New(sim.Config{
		Ranks: ranks, WorkersPerRank: 2,
		Machine: reduceSimMachine(),
		Flavor:  cluster.Flavor{Name: "bare"},
	})
	var mu sync.Mutex
	got := map[int]float64{}
	rt.Run(func(p *sim.Proc) {
		g := p.NewGraph()
		if !preReduce {
			g.SetPreReduce(false)
		}
		in := core.NewEdge("contrib")
		g.AddTT(core.TTSpec{
			Name: "Acc",
			Inputs: []core.InputSpec{{
				Edge: in,
				Reducer: func(acc, v any) any {
					if acc == nil {
						return v
					}
					return acc.(float64) + v.(float64)
				},
				StreamSize:  func(k any) int { return counts[k.(serde.Int1)[0]] },
				Commutative: true,
			}},
			Keymap: func(k any) int { return (k.(serde.Int1)[0] + 1) % ranks },
			Body: func(ctx *core.TaskContext) {
				k := ctx.Key().(serde.Int1)[0]
				v := ctx.Input(0).(float64)
				mu.Lock()
				got[k] = v
				mu.Unlock()
			},
		})
		g.Seal()
		p.Bind(g)
		for _, c := range plan {
			if c.src == p.Rank() {
				g.Seed(in, serde.Int1{c.key}, c.val)
			}
		}
		p.Fence()
	})
	var snap trace.Snapshot
	for r := 0; r < ranks; r++ {
		snap = snap.Add(rt.Proc(r).Tracer().Snapshot())
	}
	return got, snap
}

// TestTreeReductionEquivalence is the randomized property test: for random
// rank counts, contributor sets, and values, the binomial-tree reduction
// with local pre-reduction must produce exactly the result of the
// sequential owner-rank fold (values are integer-valued floats, so
// addition is exact and any ordering discrepancy would still be invisible;
// what the equality pins is that every contribution is folded exactly once
// and every stream completes). The tree path must also respect the owner
// in-degree bound: at most ceil(log2 P) partial deliveries per key.
func TestTreeReductionEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		ranks := []int{1, 2, 3, 5, 8, 13}[rng.Intn(6)]
		nKeys := 1 + rng.Intn(6)
		counts := make([]int, nKeys)
		var plan []contribution
		want := make([]float64, nKeys)
		for k := 0; k < nKeys; k++ {
			counts[k] = 1 + rng.Intn(17)
			for i := 0; i < counts[k]; i++ {
				c := contribution{key: k, src: rng.Intn(ranks), val: float64(1 + rng.Intn(1000))}
				plan = append(plan, c)
				want[k] += c.val
			}
		}

		tree, snap := runTreeReduction(t, ranks, nKeys, counts, plan, true)
		flat, _ := runTreeReduction(t, ranks, nKeys, counts, plan, false)
		for k := 0; k < nKeys; k++ {
			if tree[k] != want[k] {
				t.Fatalf("seed %d: tree reduction key %d = %v, sequential fold = %v (ranks=%d count=%d)",
					seed, k, tree[k], want[k], ranks, counts[k])
			}
			if flat[k] != want[k] {
				t.Fatalf("seed %d: pre-reduce-off key %d = %v, want %v", seed, k, flat[k], want[k])
			}
		}
		if ranks > 1 {
			bound := int64(nKeys) * int64(math.Ceil(math.Log2(float64(ranks))))
			if snap.ReduceDeliveries > bound {
				t.Fatalf("seed %d: owner received %d tree partials for %d keys on %d ranks, bound %d",
					seed, snap.ReduceDeliveries, nKeys, ranks, bound)
			}
		}
	}
}

// TestUnflushedPartialDoctor pins the misuse diagnosis: a partial parked
// in a combiner slot at fence time (auto-flush disabled stands in for a
// commutative stream whose count never closes) must show up in
// PendingReductions and be called out by the graph doctor's stall report.
func TestUnflushedPartialDoctor(t *testing.T) {
	const ranks = 2
	rt := sim.New(sim.Config{
		Ranks: ranks, WorkersPerRank: 1,
		Machine: reduceSimMachine(),
		Flavor:  cluster.Flavor{Name: "bare"},
	})
	graphs := make([]*core.Graph, ranks)
	rt.Run(func(p *sim.Proc) {
		g := p.NewGraph()
		g.DisableReduceAutoFlush()
		in := core.NewEdge("contrib")
		g.AddTT(core.TTSpec{
			Name: "Acc",
			Inputs: []core.InputSpec{{
				Edge: in,
				Reducer: func(acc, v any) any {
					if acc == nil {
						return v
					}
					return acc.(float64) + v.(float64)
				},
				StreamSize:  func(any) int { return 100 },
				Commutative: true,
			}},
			Keymap: func(any) int { return 0 },
			Body:   func(*core.TaskContext) { t.Error("stream should never complete") },
		})
		g.Seal()
		p.Bind(g)
		graphs[p.Rank()] = g
		if p.Rank() == 1 {
			g.Seed(in, serde.Int1{0}, 1.0)
			g.Seed(in, serde.Int1{0}, 2.0)
		}
		p.Fence()
	})
	if n := graphs[1].PendingReductions(); n != 1 {
		t.Fatalf("rank 1 PendingReductions = %d, want 1 parked slot", n)
	}
	pp := graphs[1].PendingPartials(8)
	if len(pp) != 1 || pp[0].Count != 2 || pp[0].Owner != 0 || pp[0].TT != "Acc" {
		t.Fatalf("PendingPartials = %+v, want one Acc slot with 2 contributions owned by rank 0", pp)
	}
	doc := live.NewDoctor(live.Config{}, rt.LiveTargets()...)
	rep := doc.Diagnose()
	if rep == nil {
		t.Fatal("doctor found nothing with an unflushed partial outstanding")
	}
	if rep.Partials != 1 {
		t.Fatalf("stall report Partials = %d, want 1", rep.Partials)
	}
	if s := rep.String(); !strings.Contains(s, "unflushed partial") || !strings.Contains(s, "Acc") {
		t.Fatalf("stall report does not call out the unflushed partial:\n%s", s)
	}
}

// TestCommutativeFinalizePanics pins the associativity contract: an
// order-based FinalizeStream cannot be made coherent with partials parked
// on other ranks, so issuing one against a commutative terminal must
// panic loudly rather than truncate the reduction.
func TestCommutativeFinalizePanics(t *testing.T) {
	rt := sim.New(sim.Config{
		Ranks: 1, WorkersPerRank: 1,
		Machine: reduceSimMachine(),
		Flavor:  cluster.Flavor{Name: "bare"},
	})
	rt.Run(func(p *sim.Proc) {
		g := p.NewGraph()
		in := core.NewEdge("contrib")
		g.AddTT(core.TTSpec{
			Name: "Acc",
			Inputs: []core.InputSpec{{
				Edge: in,
				Reducer: func(acc, v any) any {
					if acc == nil {
						return v
					}
					return acc.(float64) + v.(float64)
				},
				Commutative: true,
			}},
			Keymap: func(any) int { return 0 },
			Body:   func(*core.TaskContext) {},
		})
		g.Seal()
		p.Bind(g)
		defer func() {
			r := recover()
			if r == nil {
				t.Error("FinalizeStream on a commutative terminal did not panic")
			} else if !strings.Contains(r.(string), "commutative") {
				t.Errorf("panic message %q does not explain the commutative contract", r)
			}
		}()
		g.FinalizeSeed(in, serde.Int1{0})
	})
}

// reduceFanIn runs the contended local-accumulation workload on a real
// backend: gens generator tasks, spread over 8 workers of one rank, each
// stream perContrib contributions into a single commutative sum terminal.
// Returns the aggregate trace snapshot.
func reduceFanIn(gens, perContrib int, preReduce bool) trace.Snapshot {
	var snap trace.Snapshot
	var mu sync.Mutex
	ttg.Run(ttg.Config{Ranks: 1, WorkersPerRank: 8}, func(pc *ttg.Process) {
		g := pc.NewGraph()
		gen := ttg.NewEdge[ttg.Int1, ttg.Void]("gen")
		acc := ttg.NewEdge[ttg.Int1, float64]("acc")
		if !preReduce {
			g.Core().SetPreReduce(false)
		}
		ttg.MakeTT1(g, "Gen", ttg.Input(gen), ttg.Out(acc),
			func(x *ttg.Ctx[ttg.Int1], _ ttg.Void) {
				for i := 0; i < perContrib; i++ {
					ttg.Send(x, acc, ttg.Int1{0}, 1.0)
				}
			},
			ttg.Options[ttg.Int1]{Keymap: func(k ttg.Int1) int { return 0 }},
		)
		total := gens * perContrib
		ttg.MakeTT1(g, "Acc",
			ttg.ReduceInput(acc,
				func(a, v float64) float64 { return a + v },
				func(ttg.Int1) int { return total },
			).Commutative(),
			nil,
			func(x *ttg.Ctx[ttg.Int1], sum float64) {
				if int(sum) != total {
					panic("fan-in sum mismatch")
				}
			},
			ttg.Options[ttg.Int1]{Keymap: func(k ttg.Int1) int { return 0 }},
		)
		g.MakeExecutable()
		for i := 0; i < gens; i++ {
			ttg.Seed(g, gen, ttg.Int1{i}, ttg.Void{})
		}
		g.Fence()
		mu.Lock()
		snap = snap.Add(pc.Stats())
		mu.Unlock()
	})
	return snap
}

// TestPreReduceMatchOpsAblation is the acceptance tripwire for local
// pre-reduction: on the contended fan-in, folding into combiner slots must
// cut match-table operations at least 2x versus per-contribution delivery.
func TestPreReduceMatchOpsAblation(t *testing.T) {
	on := reduceFanIn(32, 16, true)
	off := reduceFanIn(32, 16, false)
	if off.MatchOps < 2*on.MatchOps {
		t.Fatalf("pre-reduction match-op savings below 2x: on=%d off=%d", on.MatchOps, off.MatchOps)
	}
	if on.ReduceLocalFolds == 0 {
		t.Fatal("pre-reduction never folded locally on the fan-in")
	}
	t.Logf("match ops: pre-reduce on=%d off=%d (%.1fx), local folds=%d",
		on.MatchOps, off.MatchOps, float64(off.MatchOps)/float64(on.MatchOps), on.ReduceLocalFolds)
}

// benchReduceFanIn times one full contended fan-in per op and reports the
// structural cost alongside wall time: match-table operations per op are
// what pre-reduction eliminates, and they stay meaningful on boxes whose
// core count can't exhibit lock contention.
func benchReduceFanIn(b *testing.B, preReduce bool) {
	const gens, per = 32, 16
	b.ReportAllocs()
	var matchOps int64
	for i := 0; i < b.N; i++ {
		matchOps += reduceFanIn(gens, per, preReduce).MatchOps
	}
	b.ReportMetric(float64(matchOps)/float64(b.N), "matchops/op")
}

// BenchmarkReduceLocalAccum is the pre-reduction ablation behind
// BENCH_reduce.json: the identical contended fan-in with combiner slots on
// vs per-contribution match-table delivery.
func BenchmarkReduceLocalAccum(b *testing.B) {
	b.Run("on", func(b *testing.B) { benchReduceFanIn(b, true) })
	b.Run("off", func(b *testing.B) { benchReduceFanIn(b, false) })
}

// TestReduceBenchGuard is the CI guard over the committed reduction
// baseline: with TTG_BENCH_GUARD=1 it re-measures the match-op ratio of
// the contended fan-in ablation and fails on a >10% regression against
// BENCH_reduce.json. The ratio is a structural count (messages that took a
// match-table trip), so the guard is stable across machine speeds.
func TestReduceBenchGuard(t *testing.T) {
	if os.Getenv("TTG_BENCH_GUARD") != "1" {
		t.Skip("set TTG_BENCH_GUARD=1 to run the reduction bench guard")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("bench guard needs >= 2 CPUs: contended ratios are meaningless on a single-core runner")
	}
	raw, err := os.ReadFile("BENCH_reduce.json")
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var baseline struct {
		Summary struct {
			MatchOpsRatio float64 `json:"contended_fanin_matchops_ratio"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parse BENCH_reduce.json: %v", err)
	}
	base := baseline.Summary.MatchOpsRatio
	if base <= 2 {
		t.Fatalf("BENCH_reduce.json contended_fanin_matchops_ratio = %v, want > 2", base)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		on := reduceFanIn(32, 16, true)
		off := reduceFanIn(32, 16, false)
		if r := float64(off.MatchOps) / float64(on.MatchOps); r > best {
			best = r
		}
	}
	if best < base*0.9 {
		t.Fatalf("pre-reduction match-op ratio regressed: measured %.2f, committed baseline %.2f (>10%% regression)",
			best, base)
	}
	t.Logf("contended fan-in match-op ratio: %.2f (baseline %.2f)", best, base)
}
