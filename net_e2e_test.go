package repro

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/apps/bspmm"
	"repro/internal/apps/cholesky"
	"repro/internal/netfab"
	"repro/internal/sparse"
	"repro/internal/tile"
	"repro/ttg"
)

// Multi-process end-to-end tests for the real-network fabric: the parent
// test re-execs this test binary once per rank (the worker below), the
// workers bootstrap a TCP mesh, run the application to a fence, and dump
// their locally owned result tiles; the parent merges the dumps and
// demands bit-identical float64s against the in-process run of the same
// problem. Bit-identity holds because both applications fix their
// accumulation order by dataflow (Cholesky's k-loop, bspmm's ascending-k
// MultiplyAdd chain), so any divergence means the transport corrupted,
// duplicated, or dropped a payload.

const (
	netWorkerEnv = "TTG_NET_E2E_WORKER" // app name; presence selects worker mode
	netRankEnv   = "TTG_NET_E2E_RANK"
	netSizeEnv   = "TTG_NET_E2E_SIZE"
	netCoordEnv  = "TTG_NET_E2E_COORD"
	netOutEnv    = "TTG_NET_E2E_OUT"
)

// runNetApp executes one application over cfg and returns the result
// tiles delivered to this process (all of them in-process; the local
// rank's share over a fabric).
func runNetApp(app string, cfg ttg.Config) map[[2]int]*tile.Tile {
	var mu sync.Mutex
	results := map[[2]int]*tile.Tile{}
	onResult := func(i, j int, t *tile.Tile) {
		mu.Lock()
		results[[2]int{i, j}] = t
		mu.Unlock()
	}
	switch app {
	case "potrf":
		grid := tile.Grid{N: 256, NB: 64}
		ttg.Run(cfg, func(pc *ttg.Process) {
			g := pc.NewGraph()
			a := cholesky.Build(g, cholesky.Options{Grid: grid, Priorities: true, OnResult: onResult})
			g.MakeExecutable()
			a.Seed()
			g.Fence()
		})
	case "bspmm":
		spec := sparse.DefaultSpec(24)
		spec.MaxTile = 32
		spec.FuncsMin, spec.FuncsMax = 6, 12
		mat := sparse.Generate(spec)
		ttg.Run(cfg, func(pc *ttg.Process) {
			g := pc.NewGraph()
			a := bspmm.Build(g, bspmm.Options{A: mat, OnResult: onResult})
			g.MakeExecutable()
			a.Seed()
			g.Fence()
		})
	default:
		panic("unknown app " + app)
	}
	return results
}

// TestNetE2EWorker is the per-rank subprocess body, selected via env by
// the parent tests; it skips under a normal test run.
func TestNetE2EWorker(t *testing.T) {
	app := os.Getenv(netWorkerEnv)
	if app == "" {
		t.Skip("subprocess helper: driven by TestNetCholesky/TestNetBspmm")
	}
	rank, _ := strconv.Atoi(os.Getenv(netRankEnv))
	size, _ := strconv.Atoi(os.Getenv(netSizeEnv))
	ep, err := netfab.Bootstrap(netfab.Config{
		Transport: "tcp", Rank: rank, Size: size, Coord: os.Getenv(netCoordEnv),
	})
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	results := runNetApp(app, ttg.Config{Fabric: ep, WorkersPerRank: 2})
	if err := writeTiles(os.Getenv(netOutEnv), results); err != nil {
		t.Fatalf("writing tiles: %v", err)
	}
}

// writeTiles dumps result tiles as [u32 i][u32 j][u32 rows][u32 cols]
// followed by rows*cols little-endian float64 bit patterns.
func writeTiles(path string, tiles map[[2]int]*tile.Tile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [16]byte
	for k, tl := range tiles {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(k[0]))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(k[1]))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(tl.Rows))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(tl.Cols))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		buf := make([]byte, 8*len(tl.Data))
		for i, v := range tl.Data {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readTiles parses a writeTiles dump into key -> float64 bit patterns.
func readTiles(path string) (map[[2]int][]uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[[2]int][]uint64{}
	for off := 0; off < len(raw); {
		if off+16 > len(raw) {
			return nil, fmt.Errorf("truncated tile header at %d", off)
		}
		i := int(binary.LittleEndian.Uint32(raw[off:]))
		j := int(binary.LittleEndian.Uint32(raw[off+4:]))
		n := int(binary.LittleEndian.Uint32(raw[off+8:])) * int(binary.LittleEndian.Uint32(raw[off+12:]))
		off += 16
		if off+8*n > len(raw) {
			return nil, fmt.Errorf("truncated tile payload at %d", off)
		}
		bits := make([]uint64, n)
		for k := range bits {
			bits[k] = binary.LittleEndian.Uint64(raw[off+8*k:])
		}
		out[[2]int{i, j}] = bits
		off += 8 * n
	}
	return out, nil
}

// runNetE2E spawns one worker process per rank over a freshly reserved
// TCP coordinator address, merges their tile dumps, and compares the
// merged result bit-for-bit with the in-process run.
func runNetE2E(t *testing.T, app string, ranks int) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short")
	}
	// Reserve a coordinator port (bind and release; rank 0 rebinds it).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	outs := make([]string, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.tiles", r))
		cmd := exec.Command(os.Args[0], "-test.run=^TestNetE2EWorker$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			netWorkerEnv+"="+app,
			netRankEnv+"="+strconv.Itoa(r),
			netSizeEnv+"="+strconv.Itoa(ranks),
			netCoordEnv+"="+coord,
			netOutEnv+"="+outs[r],
		)
		wg.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer wg.Done()
			if out, err := cmd.CombinedOutput(); err != nil {
				errs[r] = fmt.Errorf("rank %d: %v\n%s", r, err, out)
			}
		}(r, cmd)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	merged := map[[2]int][]uint64{}
	for r := 0; r < ranks; r++ {
		tiles, err := readTiles(outs[r])
		if err != nil {
			t.Fatalf("rank %d dump: %v", r, err)
		}
		for k, bits := range tiles {
			if _, dup := merged[k]; dup {
				t.Fatalf("tile %v produced on two ranks", k)
			}
			merged[k] = bits
		}
	}

	ref := runNetApp(app, ttg.Config{Ranks: 2, WorkersPerRank: 2})
	if len(merged) != len(ref) {
		t.Fatalf("%d tiles over the fabric, %d in-process", len(merged), len(ref))
	}
	for k, tl := range ref {
		bits := merged[k]
		if len(bits) != len(tl.Data) {
			t.Fatalf("tile %v: %d values over the fabric, %d in-process", k, len(bits), len(tl.Data))
		}
		for i, v := range tl.Data {
			if bits[i] != math.Float64bits(v) {
				t.Fatalf("tile %v[%d]: fabric bits %x, in-process %x (%v)",
					k, i, bits[i], math.Float64bits(v), v)
			}
		}
	}
}

func TestNetCholesky2Proc(t *testing.T) { runNetE2E(t, "potrf", 2) }
func TestNetCholesky4Proc(t *testing.T) { runNetE2E(t, "potrf", 4) }
func TestNetBspmm2Proc(t *testing.T)    { runNetE2E(t, "bspmm", 2) }
func TestNetBspmm4Proc(t *testing.T)    { runNetE2E(t, "bspmm", 4) }
